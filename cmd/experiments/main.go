// Command experiments regenerates the paper's tables and figures.
//
//	experiments                  # run everything
//	experiments -run fig12a      # one artifact
//	experiments -run fig3,fig13  # a subset
//	experiments -quick           # smaller workloads (smoke runs)
//	experiments -o results.txt   # also write a report file
//	experiments -run matrix -policy gto -workload bfs,texture
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"subwarpsim"
	"subwarpsim/internal/experiments"
	"subwarpsim/internal/obs"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	jobs := flag.Int("j", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
	workers := flag.Int("workers", 0, "alias of -j (kept for compatibility)")
	outPath := flag.String("o", "", "also write the combined report to this file")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	compile := flag.String("compile", "on", "execution engine: on (compiled, default) or off (per-cycle interpreter)")
	policyFlag := flag.String("policy", "", "warp scheduler policy override: lrr (default), gto, wasp; the matrix experiment narrows its policy axis to this")
	workloadFlag := flag.String("workload", "",
		"comma-separated workload families for the matrix experiment ("+strings.Join(subwarpsim.WorkloadNames(), ", ")+"); empty means all")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	var interpret bool
	switch strings.ToLower(*compile) {
	case "on":
	case "off":
		interpret = true
	default:
		fmt.Fprintf(os.Stderr, "bad -compile %q (on, off)\n", *compile)
		os.Exit(2)
	}

	policy, err := subwarpsim.ParseSchedPolicy(*policyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var workloads []string
	if *workloadFlag != "" {
		for _, name := range strings.Split(*workloadFlag, ",") {
			workloads = append(workloads, strings.TrimSpace(name))
		}
	}

	if *version {
		fmt.Printf("experiments %s\n", obs.Build())
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	w := *jobs
	if w == 0 {
		w = *workers
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := experiments.Options{
		Quick:       *quick,
		Workers:     w,
		Context:     ctx,
		Interpret:   interpret,
		SchedPolicy: policy,
		Workloads:   workloads,
	}
	var combined strings.Builder
	for _, e := range selected {
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		text := report.String()
		fmt.Print(text)
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		combined.WriteString(text)
		combined.WriteString("\n")
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(combined.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *outPath)
	}
}
