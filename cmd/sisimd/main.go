// Command sisimd serves the subwarp-interleaving simulator over HTTP:
// a bounded worker pool, a content-addressed result cache, per-job
// timeouts, and graceful draining on SIGTERM/SIGINT.
//
//	sisimd -addr :8477 -workers 4 -cache-dir /var/cache/sisim
//
// Endpoints: GET /healthz, GET /metrics, GET /v1/apps,
// POST /v1/jobs, POST /v1/batch, POST /v1/submit. See README
// "Serving" and "Submitting kernels"; the -tenant-* flags configure
// per-tenant rate limits, quotas, and weighted-fair scheduling keyed
// by the X-Tenant request header.
//
// With -peers (or -coordinator) the daemon fronts a cluster instead:
// submissions are consistent-hashed by content key across the listed
// worker daemons so each key's results stay hot in one node's memory
// cache, with per-peer circuit breakers, batch scatter-gather with
// work stealing, and local single-node fallback when every peer is
// down. See README "Running a cluster".
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"subwarpsim/internal/cluster"
	"subwarpsim/internal/faults"
	"subwarpsim/internal/obs"
	"subwarpsim/internal/server"
	"subwarpsim/internal/simcache"
	"subwarpsim/internal/sm"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sisimd:", err)
	os.Exit(1)
}

// parseWeights parses "gold=4,silver=2" into the weighted-fair dequeue
// share map; an empty spec means every tenant weighs 1.
func parseWeights(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad entry %q (want tenant=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive integer)", val, name)
		}
		weights[name] = w
	}
	return weights, nil
}

// buildLogger constructs the daemon's structured logger on stderr
// (stdout stays reserved for the parseable startup lines).
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off":
		return obs.NopLogger(), nil
	default:
		return nil, fmt.Errorf("bad -log-level %q (debug, info, warn, error, off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8477", "listen address (host:port, port 0 picks one)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job bound before submissions get 429")
	simWorkers := flag.Int("sim-workers", 0, "SM goroutines per simulation (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 4096, "in-memory result cache entries")
	cacheDir := flag.String("cache-dir", "", "persist results in this directory instead of memory")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job simulation timeout")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "upper clamp on requested job timeouts")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight jobs")
	faultSpec := flag.String("faults", "", "deterministic fault-injection spec (overrides SISIM_FAULTS)")
	compile := flag.String("compile", "on", "default engine for jobs that don't pick one: on (compiled) or off (interpreter)")
	cacheRetries := flag.Int("cache-retries", 2, "retries for transient disk-cache errors (-1 disables)")
	breakerTrip := flag.Int("breaker-trip", 5, "consecutive disk-cache failures that trip the memory-only breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a recovery probe")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant submissions per second (token bucket; 0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = 1 when -tenant-rate is set)")
	tenantQueued := flag.Int("tenant-queued", 0, "per-tenant queued-job quota (0 = unlimited)")
	tenantInFlight := flag.Int("tenant-inflight", 0, "per-tenant concurrently-running quota (0 = unlimited)")
	tenantWeights := flag.String("tenant-weights", "", "weighted-fair dequeue shares, e.g. gold=4,silver=2 (unlisted tenants weigh 1)")
	submitMaxCycles := flag.Int64("submit-max-cycles", 0, "hard cap on a submission's cycle budget (0 = built-in 20M)")
	submitMaxInstrs := flag.Int64("submit-max-instrs", 0, "hard cap on a submission's instruction budget (0 = built-in 100M)")
	submitMaxMem := flag.Int64("submit-max-mem", 0, "hard cap on a submission's memory footprint in bytes (0 = built-in 64MiB)")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator over -peers instead of simulating locally")
	peersFlag := flag.String("peers", "", "comma-separated worker base URLs (http://host:port); implies -coordinator")
	advertise := flag.String("advertise", "", "coordinator's advertised name in GET /cluster and logs (default \"coordinator\")")
	hedgeAfter := flag.Duration("hedge-after", 0, "duplicate a routed request to the next ring node if the home peer hasn't answered within this duration (0 = off)")
	peerWindow := flag.Int("peer-window", 4, "per-peer in-flight window for batch scatter-gather")
	ringVNodes := flag.Int("ring-vnodes", 64, "virtual nodes per peer on the consistent-hash ring")
	ringLoad := flag.Float64("ring-load-factor", 1.25, "bounded-load factor: a peer loaded past ceil(factor*(inflight+1)/alive) yields hot keys to ring successors")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error, off")
	eventRing := flag.Int("events", 256, "debug-event ring size (GET /debug/events)")
	traceKeep := flag.Int("traces", 64, "completed request traces retained (GET /debug/traces)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("sisimd %s\n", obs.Build())
		return
	}
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}

	logger, err := buildLogger(*logLevel)
	if err != nil {
		fail(err)
	}
	slog.SetDefault(logger)

	compiled, err := server.ParseCompile(*compile)
	if err != nil {
		fail(fmt.Errorf("-compile: %w", err))
	}

	injector, err := faults.Parse(*faultSpec)
	if err != nil {
		fail(err)
	}
	if injector == nil {
		if injector, err = faults.FromEnv(); err != nil {
			fail(err)
		}
	}
	// The disk cache (when configured) sits behind the resilience
	// layer: transient errors retry, a dead disk trips the breaker and
	// the daemon keeps serving memory-only (degraded, never wrong).
	var cache simcache.Cache
	if *cacheDir != "" {
		d := simcache.NewDisk(*cacheDir)
		d.Faults = injector
		cache = simcache.NewResilient(d, simcache.ResilientOptions{
			Retries:       *cacheRetries,
			TripAfter:     *breakerTrip,
			Cooldown:      *breakerCooldown,
			MemoryEntries: *cacheEntries,
		})
	} else {
		cache = simcache.NewMemory(*cacheEntries)
	}

	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		fail(fmt.Errorf("-tenant-weights: %w", err))
	}

	observer := obs.New(server.MetricsNamespace, *eventRing, *traceKeep, logger)
	srv := server.New(server.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		SimWorkers:        *simWorkers,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		Cache:             cache,
		Faults:            injector,
		Obs:               observer,
		Interpret:         !compiled,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxQueued:   *tenantQueued,
		TenantMaxInFlight: *tenantInFlight,
		TenantWeights:     weights,
		MaxBudget: sm.Budget{
			MaxCycles:   *submitMaxCycles,
			MaxInstrs:   *submitMaxInstrs,
			MaxMemBytes: *submitMaxMem,
		},
	})

	// Coordinator mode: the same daemon binary fronts a ring of worker
	// daemons, sharing the local server's Observer so /metrics and
	// /debug/traces unify routing and execution. The local server stays
	// fully functional underneath — it is the single-node fallback when
	// every peer is down.
	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if *coordinator && len(peers) == 0 {
		fail(fmt.Errorf("-coordinator requires -peers"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// Profiling endpoints are opt-in: they leak internals (goroutine
	// stacks, heap contents), so the flag keeps them off any daemon that
	// didn't explicitly ask. The handlers are registered on a wrapping
	// mux rather than via net/http/pprof's DefaultServeMux side effect.
	handler := srv.Handler()
	if len(peers) > 0 {
		co, err := cluster.New(cluster.Options{
			Self:       *advertise,
			Peers:      peers,
			Local:      srv,
			Obs:        observer,
			VNodes:     *ringVNodes,
			LoadFactor: *ringLoad,
			Window:     *peerWindow,
			HedgeAfter: *hedgeAfter,
			TripAfter:  *breakerTrip,
			Cooldown:   *breakerCooldown,
		})
		if err != nil {
			fail(err)
		}
		handler = co.Handler()
	}
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}

	// The smoke test and scripts parse this line for the bound port.
	fmt.Printf("sisimd listening on %s\n", ln.Addr())
	if len(peers) > 0 {
		fmt.Printf("sisimd: coordinating %d peers: %s\n", len(peers), strings.Join(peers, ", "))
	}
	if injector != nil {
		fmt.Printf("sisimd: fault injection active: %s\n", injector)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Printf("sisimd: %v, draining\n", sig)
	case err := <-errc:
		fail(err)
	}

	// Stop accepting connections, then finish queued and in-flight jobs
	// within the drain budget; jobs still running after it are
	// cancelled via their contexts.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sisimd: shutdown:", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sisimd:", err)
		os.Exit(1)
	}
	fmt.Println("sisimd: drained cleanly")
}
