package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"subwarpsim/internal/obs"
)

// buildDaemon compiles the sisimd binary into a test temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sisimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDaemonSmoke drives the real binary end to end: start on an
// ephemeral port, POST the same job twice (second must be a cache
// hit), check health and metrics, then SIGTERM and expect a clean
// drain.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	line := sc.Text()
	const prefix = "sisimd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)
	go func() { // drain remaining output so the child never blocks
		for sc.Scan() {
		}
	}()

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	post := func() map[string]any {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"microbench":4,"si":true}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
		}
		var res map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := post()
	if first["cached"] == true {
		t.Fatal("first job cannot be cached")
	}
	second := post()
	if second["cached"] != true {
		t.Fatal("second identical job must be served from the cache")
	}
	f, _ := json.Marshal(first["counters"])
	s, _ := json.Marshal(second["counters"])
	if !bytes.Equal(f, s) {
		t.Errorf("cached counters differ:\n  first  %s\n  second %s", f, s)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		JobsDone           int64   `json:"jobs_done"`
		SimCyclesTotal     int64   `json:"sim_cycles_total"`
		SimCyclesPerSecond float64 `json:"sim_cycles_per_second"`
		Cache              struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsDone != 1 || m.Cache.Hits != 1 {
		t.Errorf("metrics: done=%d hits=%d, want 1/1", m.JobsDone, m.Cache.Hits)
	}
	if m.SimCyclesTotal <= 0 || m.SimCyclesPerSecond <= 0 {
		t.Errorf("metrics: sim_cycles_total=%d sim_cycles_per_second=%v, want both > 0",
			m.SimCyclesTotal, m.SimCyclesPerSecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// TestDaemonDiskCachePersists restarts the daemon on the same cache
// directory and expects the second process to serve from disk.
func TestDaemonDiskCachePersists(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	cacheDir := t.TempDir()

	runOnce := func() (cached bool) {
		t.Helper()
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache-dir", cacheDir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		}()
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatal("no startup line")
		}
		base := "http://" + strings.TrimPrefix(sc.Text(), "sisimd listening on ")
		go func() {
			for sc.Scan() {
			}
		}()
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"microbench":2}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST = %d", resp.StatusCode)
		}
		var res map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res["cached"] == true
	}

	if runOnce() {
		t.Fatal("first process cannot hit an empty disk cache")
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries = %v, %v", entries, err)
	}
	if !runOnce() {
		t.Error("second process must serve the job from the disk cache")
	}
}

// TestDaemonDegradedServing is the acceptance drill for a failing
// cache disk: -cache-dir points through a regular file, so every disk
// operation fails with ENOTDIR (permission bits are useless here —
// tests may run as root). The daemon must start anyway, serve correct
// results memory-only with zero non-200 responses, trip the breaker,
// report "degraded" on /healthz, and still drain cleanly.
func TestDaemonDegradedServing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache-dir", filepath.Join(blocker, "cache"),
		"-cache-retries", "-1",
		"-breaker-trip", "2",
		"-breaker-cooldown", "1h")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	base := "http://" + strings.TrimPrefix(sc.Text(), "sisimd listening on ")
	go func() {
		for sc.Scan() {
		}
	}()

	// Distinct jobs hammer the dead disk past the trip threshold; every
	// one must still return 200 with real results.
	var lastCounters string
	for i, body := range []string{
		`{"microbench":1}`, `{"microbench":2}`, `{"microbench":4}`,
	} {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var res map[string]any
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d with dead disk = %d, want 200 (%v)", i, resp.StatusCode, res)
		}
		b, _ := json.Marshal(res["counters"])
		lastCounters = string(b)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health["status"] != "degraded" {
		t.Errorf("healthz = %d %v, want 200 with status degraded", resp.StatusCode, health)
	}

	// Memory-only serving still caches: the repeat is a hit with
	// bit-identical counters, and no request has seen a 5xx.
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"microbench":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var repeat map[string]any
	err = json.NewDecoder(resp.Body).Decode(&repeat)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || repeat["cached"] != true {
		t.Errorf("repeat with open breaker = %d cached=%v, want 200 from memory", resp.StatusCode, repeat["cached"])
	}
	if b, _ := json.Marshal(repeat["counters"]); string(b) != lastCounters {
		t.Errorf("memory-cached counters differ:\n  first  %s\n  repeat %s", lastCounters, b)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Degraded bool `json:"degraded"`
		Cache    struct {
			BreakerTrips int64 `json:"breaker_trips"`
			DiskErrors   int64 `json:"disk_errors"`
		} `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded || m.Cache.BreakerTrips != 1 || m.Cache.DiskErrors < 2 {
		t.Errorf("metrics = %+v, want degraded with 1 trip and >=2 disk errors", m)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded daemon exited uncleanly: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degraded daemon did not drain after SIGTERM")
	}
}

// TestDaemonSubmitSandbox is the sandbox gate: a race-enabled daemon
// is fed the entire hostile corpus through POST /v1/submit and must
// reject every program with a structured reason (400) or kill it
// within its gas budget (422) — then still serve well-formed work,
// answer /healthz, count the attacks in its metrics, and drain
// cleanly (a detected data race fails the drain with exit code 66).
func TestDaemonSubmitSandbox(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary under -race")
	}
	bin := filepath.Join(t.TempDir(), "sisimd-race")
	if out, err := exec.Command("go", "build", "-race", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-submit-max-cycles", "20000", "-submit-max-instrs", "40000",
		"-submit-max-mem", "1048576", "-tenant-queued", "16")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	base := "http://" + strings.TrimPrefix(sc.Text(), "sisimd listening on ")
	go func() {
		for sc.Scan() {
		}
	}()

	submit := func(tenant, name, assembly string) (int, map[string]any) {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"name": name, "assembly": assembly})
		req, err := http.NewRequest(http.MethodPost, base+"/v1/submit", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("undecodable response (status %d): %v", resp.StatusCode, err)
		}
		return resp.StatusCode, m
	}

	files, err := filepath.Glob("../../internal/admission/testdata/hostile/*.asm")
	if err != nil || len(files) == 0 {
		t.Fatalf("no hostile corpus: %v", err)
	}
	var rejected, killed int
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(f)
		switch code, body := submit("attacker", name, string(src)); code {
		case http.StatusBadRequest:
			if r, _ := body["reason"].(string); r == "" {
				t.Errorf("%s: 400 without a structured reason: %v", name, body)
			}
			rejected++
		case http.StatusUnprocessableEntity:
			_, budget := body["budget_exhausted"]
			_, deadlock := body["deadlock"]
			if !budget && !deadlock {
				t.Errorf("%s: 422 without budget or deadlock marker: %v", name, body)
			}
			killed++
		default:
			t.Errorf("%s: status %d — hostile input escaped the sandbox: %v", name, code, body)
		}
	}
	if rejected == 0 || killed == 0 {
		t.Fatalf("gate is vacuous: %d rejects, %d kills", rejected, killed)
	}

	// The daemon shrugged it all off: health, then a real kernel.
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after hostile corpus: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	sample, err := os.ReadFile("../../examples/submissions/saxpy.asm")
	if err != nil {
		t.Fatal(err)
	}
	if code, body := submit("paying-customer", "saxpy", string(sample)); code != http.StatusOK {
		t.Fatalf("well-formed submission after corpus = %d: %v", code, body)
	}

	// The attack shows up on the instruments, labeled by tenant.
	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var expo strings.Builder
	io.Copy(&expo, resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"sisimd_admission_rejects_total", "sisimd_budget_kills_total",
		`sisimd_tenant_queue_depth{tenant="attacker"}`,
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %s after the corpus run", want)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly (data race?): %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after the hostile corpus")
	}
}

// startDaemon launches the built binary with extra flags and returns
// the base URL; cleanup SIGTERMs it and waits for the drain.
func startDaemon(t *testing.T, bin string, extra ...string) string {
	base, _ := startDaemonCmd(t, bin, extra...)
	return base
}

// startDaemonCmd also returns the process handle so tests can kill a
// daemon mid-run (the cluster reroute test).
func startDaemonCmd(t *testing.T, bin string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	base := "http://" + strings.TrimPrefix(sc.Text(), "sisimd listening on ")
	go func() {
		for sc.Scan() {
		}
	}()
	return base, cmd
}

// TestDaemonCluster drives the coordinator topology end to end with
// real daemon processes: two workers plus a coordinator routing across
// them. Checks content-key affinity (a repeated job is a cache hit
// through the coordinator), /cluster reporting, and rerouting — after
// one worker is SIGKILLed, every key still answers with the results
// computed before the kill, bit for bit.
func TestDaemonCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	w1base, w1 := startDaemonCmd(t, bin, "-workers", "1")
	w2base, _ := startDaemonCmd(t, bin, "-workers", "1")
	cobase, _ := startDaemonCmd(t, bin, "-coordinator",
		"-peers", w1base+","+w2base, "-breaker-trip", "1", "-workers", "1")

	post := func(spec string) (map[string]any, int) {
		t.Helper()
		resp, err := http.Post(cobase+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res map[string]any
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
		}
		return res, resp.StatusCode
	}

	resp, err := http.Get(cobase + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Peers []struct {
			State string `json:"breaker_state"`
		} `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(report.Peers) != 2 {
		t.Fatalf("/cluster lists %d peers, want 2", len(report.Peers))
	}

	// Sweep distinct keys, then repeat: affinity must make every repeat
	// a worker-side cache hit through the coordinator.
	specs := make([]string, 6)
	for i := range specs {
		specs[i] = `{"microbench":4,"si":true,"latency_cycles":` + strconv.Itoa(200+10*i) + `}`
	}
	first := make([]map[string]any, len(specs))
	for i, spec := range specs {
		res, code := post(spec)
		if code != http.StatusOK {
			t.Fatalf("first pass POST = %d", code)
		}
		first[i] = res
	}
	for i, spec := range specs {
		res, code := post(spec)
		if code != http.StatusOK {
			t.Fatalf("second pass POST = %d", code)
		}
		if res["cached"] != true {
			t.Errorf("repeat of spec %d not served from cache (affinity broken)", i)
		}
		if res["key"] != first[i]["key"] {
			t.Errorf("spec %d key changed between passes", i)
		}
	}

	// Kill one worker outright; every key must still answer, identical
	// to the pre-kill result (rerouted to the surviving worker or, for
	// its cached keys, re-simulated there — determinism makes both
	// indistinguishable).
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	w1.Wait()
	for i, spec := range specs {
		res, code := post(spec)
		if code != http.StatusOK {
			t.Fatalf("post-kill POST %d = %d", i, code)
		}
		if res["key"] != first[i]["key"] {
			t.Errorf("spec %d key differs after worker kill", i)
		}
		if fmt.Sprint(res["counters"]) != fmt.Sprint(first[i]["counters"]) {
			t.Errorf("spec %d counters differ after worker kill:\n  before %v\n  after  %v",
				i, first[i]["counters"], res["counters"])
		}
	}
}

// TestDaemonPprofGating: /debug/pprof/ must 404 by default and serve
// the profile index only when the daemon opted in with -pprof, without
// shadowing the normal API surface.
func TestDaemonPprofGating(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	get := func(base, path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body strings.Builder
		if _, err := io.Copy(&body, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.String()
	}

	off := startDaemon(t, bin)
	if code, _ := get(off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("without -pprof, /debug/pprof/ = %d, want 404", code)
	}

	on := startDaemon(t, bin, "-pprof")
	if code, body := get(on, "/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("with -pprof, /debug/pprof/ = %d, want 200 with profile index", code)
	}
	if code, _ := get(on, "/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Errorf("with -pprof, heap profile = %d, want 200", code)
	}
	// The API surface must survive the wrapping mux, and /metrics must
	// advertise the throughput gauge even before any job has run.
	if code, body := get(on, "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "sim_cycles_per_second") {
		t.Errorf("with -pprof, /metrics = %d body %q, want 200 mentioning sim_cycles_per_second",
			code, body)
	}
}

// TestDaemonFaultSpecRejected: a malformed SISIM_FAULTS/-faults spec
// fails startup loudly rather than silently injecting nothing.
func TestDaemonFaultSpecRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-faults", "server.admit=explode(p=1)")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("bad fault spec must fail startup")
	}
	if !strings.Contains(string(out), "explode") {
		t.Errorf("output %q must name the bad kind", out)
	}
}

// TestDaemonRejectsBadFlags: startup failures exit non-zero with a
// one-line error.
func TestDaemonRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:8477", "surprise-arg")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("stray argument must fail startup")
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("exit: %v", err)
	}
	if !strings.Contains(string(out), "unexpected argument") {
		t.Errorf("output %q must name the stray argument", out)
	}

	for name, args := range map[string][]string{
		"malformed entry": {"-addr", "127.0.0.1:0", "-tenant-weights", "goldnovalue"},
		"zero weight":     {"-addr", "127.0.0.1:0", "-tenant-weights", "gold=0"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Fatalf("%s: bad -tenant-weights must fail startup", name)
		}
		if !strings.Contains(string(out), "tenant-weights") {
			t.Errorf("%s: output %q must name the flag", name, out)
		}
	}
}

// TestDaemonCompileFlag: a bad -compile value must fail startup with a
// one-line error, and a daemon running interpreter-by-default
// (-compile off) must serve jobs with exactly the counters a
// compiled-default daemon reports — the engines are bit-identical, so
// the flag can never change results.
func TestDaemonCompileFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	out, err := exec.Command(bin, "-addr", "127.0.0.1:0", "-compile", "maybe").CombinedOutput()
	if err == nil {
		t.Fatal("bad -compile value must fail startup")
	}
	if !strings.Contains(string(out), "maybe") {
		t.Errorf("output %q must name the bad value", out)
	}

	counters := func(base string) string {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"microbench":4,"si":true}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
		}
		var res map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(res["counters"])
		return string(b)
	}
	compiled := counters(startDaemon(t, bin))
	interpreted := counters(startDaemon(t, bin, "-compile", "off"))
	if compiled != interpreted {
		t.Errorf("-compile off changed results:\n  compiled    %s\n  interpreted %s",
			compiled, interpreted)
	}
}

// TestDaemonMetricsExposition scrapes the live daemon in both formats:
// the default JSON shape must keep its legacy keys plus the new latency
// breakdowns, and Accept: text/plain must switch to Prometheus text
// exposition that passes the grammar lint and carries every required
// series.
func TestDaemonMetricsExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	base := startDaemon(t, bin, "-workers", "2")

	// One job so latency and SI series carry data.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"microbench":4,"si":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}

	// Default: the backward-compatible JSON document.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default /metrics content-type = %q", ct)
	}
	var jm map[string]any
	err = json.NewDecoder(resp.Body).Decode(&jm)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"jobs_done", "queue_depth", "sim_cycles_total", "cache",
		"latency_p99_ms", "queue_wait_p95_ms", "exec_p95_ms",
	} {
		if _, ok := jm[k]; !ok {
			t.Errorf("JSON /metrics missing %q", k)
		}
	}

	// Prometheus: lint the exposition and require the key series.
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus /metrics content-type = %q", ct)
	}
	if err := obs.Lint(bytes.NewReader(body)); err != nil {
		t.Fatalf("prometheus exposition failed lint: %v\n%s", err, body)
	}
	for _, series := range []string{
		"sisimd_queue_depth",
		"sisimd_cache_hits_total",
		"sisimd_cache_misses_total",
		"sisimd_stage_latency_seconds_bucket",
		"sisimd_si_idle_cycles_total",
		"sisimd_si_subwarp_switches_total",
		"sisimd_build_info",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("exposition missing required series %s", series)
		}
	}
}

// TestDaemonVersionFlag: -version prints build info and exits 0
// without binding a port.
func TestDaemonVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	line := strings.TrimSpace(string(out))
	if !strings.HasPrefix(line, "sisimd ") || !strings.Contains(line, "go1.") {
		t.Errorf("-version output %q, want 'sisimd ... (go1...)'", line)
	}
}
