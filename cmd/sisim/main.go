// Command sisim runs one simulation and prints its statistics.
//
//	sisim -app BFV1                       # baseline
//	sisim -app BFV1 -si -yield            # Both, N>=0.5
//	sisim -app Ctrl -si -trigger any      # SOS, N>0
//	sisim -microbench 4                   # 8-way divergence microbenchmark
//	sisim -app MW -si -latency 900 -maxsubwarps 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subwarpsim"
)

func main() {
	app := flag.String("app", "", "application trace name (AV1..MW); see -listapps")
	micro := flag.Int("microbench", 0, "run the microbenchmark with this subwarp size (1..32)")
	si := flag.Bool("si", false, "enable Subwarp Interleaving")
	dws := flag.Bool("dws", false, "model Dynamic Warp Subdivision instead of SI")
	yield := flag.Bool("yield", false, "enable subwarp-yield (the paper's 'Both' mode)")
	trigger := flag.String("trigger", "half", "select trigger: any (N>0), half (N>=0.5), all (N=1)")
	latency := flag.Int("latency", 600, "L1 miss latency in cycles")
	warpSlots := flag.Int("warpslots", 8, "warp slots per processing block (2, 4, 8)")
	maxSubwarps := flag.Int("maxsubwarps", 0, "TST entries / subwarps per warp (0 = unlimited)")
	order := flag.String("order", "taken", "divergent path order: taken, fallthrough, largest, random")
	listApps := flag.Bool("listapps", false, "list application traces and exit")
	verbose := flag.Bool("v", false, "print the full counter set")
	flag.Parse()

	if *listApps {
		for _, a := range subwarpsim.Applications() {
			fmt.Printf("%-6s %-24s %-5s regs=%d warps=%d shaders=%d\n",
				a.Name, a.App, a.Effect, a.RegsPerThread, a.NumWarps, a.Shaders)
		}
		return
	}

	cfg := subwarpsim.DefaultConfig()
	cfg.L1MissLatency = *latency
	cfg.WarpSlotsPerBlock = *warpSlots
	switch strings.ToLower(*order) {
	case "taken":
		cfg.Order = subwarpsim.OrderTakenFirst
	case "fallthrough":
		cfg.Order = subwarpsim.OrderFallthroughFirst
	case "largest":
		cfg.Order = subwarpsim.OrderLargestFirst
	case "random":
		cfg.Order = subwarpsim.OrderRandom
	default:
		fail("unknown -order %q", *order)
	}
	if *dws {
		cfg = cfg.WithDWS()
	} else if *si {
		var trig subwarpsim.SelectTrigger
		switch strings.ToLower(*trigger) {
		case "any":
			trig = subwarpsim.TriggerAnyStalled
		case "half":
			trig = subwarpsim.TriggerHalfStalled
		case "all":
			trig = subwarpsim.TriggerAllStalled
		default:
			fail("unknown -trigger %q", *trigger)
		}
		cfg = cfg.WithSI(*yield, trig)
		cfg.SI.MaxSubwarps = *maxSubwarps
	}

	var kernel *subwarpsim.Kernel
	var err error
	switch {
	case *micro > 0:
		kernel, err = subwarpsim.BuildMicrobenchmark(subwarpsim.DefaultMicrobenchmark(*micro))
	case *app != "":
		var profile subwarpsim.AppProfile
		profile, err = subwarpsim.Application(*app)
		if err == nil {
			kernel, err = subwarpsim.BuildMegakernel(profile)
		}
	default:
		fail("choose a workload: -app <name> or -microbench <subwarp size>")
	}
	if err != nil {
		fail("%v", err)
	}

	res, err := subwarpsim.Run(cfg, kernel)
	if err != nil {
		fail("%v", err)
	}

	c := res.Counters
	d := res.Derived()
	fmt.Printf("kernel    %s\n", kernel.Program.Name)
	fmt.Printf("config    %s, L1 miss %d cy, %d warp slots/block\n",
		cfg.PolicyName(), cfg.L1MissLatency, cfg.WarpSlotsPerBlock)
	fmt.Printf("cycles    %d\n", c.Cycles)
	fmt.Printf("instrs    %d (IPC/block %.3f, SIMT efficiency %.1f%%)\n",
		c.IssuedInstrs, d.IPC, d.SIMTEfficiency*100)
	fmt.Printf("stalls    %.1f%% of time exposed on loads (%.1f%% in divergent code)\n",
		d.ExposedStallFrac*100, d.DivergentStallFrac*100)
	fmt.Printf("fetch     %.1f%% of time exposed on instruction fetch\n", d.FetchStallFrac*100)
	fmt.Printf("L1D       %.1f%% miss (%d/%d lines)\n", d.L1DMissRate*100, c.L1DMisses, c.L1DAccesses)
	if c.RTTraces > 0 {
		fmt.Printf("RT core   %d traces, %.1f BVH steps/ray\n", c.RTTraces, d.AvgTraversalSteps)
	}
	if cfg.SI.Enabled {
		fmt.Printf("SI        %d stalls, %d wakeups, %d selects, %d yields, %d TST overflows\n",
			c.SubwarpStalls, c.SubwarpWakeups, c.SubwarpSelects, c.SubwarpYields, c.TSTOverflow)
	}
	if *verbose {
		fmt.Printf("\ncounters  %+v\n", c)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
