// Command sisim runs one simulation and prints its statistics.
//
//	sisim -app BFV1                       # baseline raytracing trace
//	sisim -app BFV1 -si -yield            # Both, N>=0.5
//	sisim -app Ctrl -si -trigger any      # SOS, N>0
//	sisim -microbench 4                   # 8-way divergence microbenchmark
//	sisim -workload bfs -si               # registered workload family
//	sisim -workload gemm -policy gto      # greedy-then-oldest scheduler
//	sisim -app MW -si -latency 900 -maxsubwarps 4
//	sisim -microbench 4 -si -trace out.json -trace-warps 0-7
//	sisim -app BFV1 -si -timeline occupancy.csv -stalls -hist
//	sisim -submit kernel.asm -max-cycles 100000   # untrusted assembly
//
// Workloads come in four kinds: -app (the paper's raytracing traces,
// see -listapps), -microbench (the divergence-scaling microbenchmark),
// -workload (registered synthetic families — the list in the flag's
// usage text is enumerated from the registry, so new families show up
// automatically), and -submit (untrusted assembly put through the same
// admission checks and gas budgets the daemon's /v1/submit applies, so
// a kernel can be vetted locally before it is ever sent to a service).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"subwarpsim"
	"subwarpsim/internal/admission"
	"subwarpsim/internal/faults"
	"subwarpsim/internal/obs"
	"subwarpsim/internal/simcache"
)

func main() {
	app := flag.String("app", "", "application trace name (AV1..MW); see -listapps")
	micro := flag.Int("microbench", 0, "run the microbenchmark with this subwarp size (1..32)")
	// The -workload menu is enumerated from the generator registry so
	// usage text can never go stale as families are added.
	workloadFlag := flag.String("workload", "",
		"synthetic workload family: "+strings.Join(subwarpsim.WorkloadNames(), ", "))
	submitPath := flag.String("submit", "",
		"validate and run untrusted assembly from this file under the daemon's admission checks and gas budgets")
	submitWarps := flag.Int("warps", 8, "warps to launch for -submit")
	maxCycles := flag.Int64("max-cycles", 2_000_000, "-submit gas budget: simulated cycles per SM (0 = unlimited)")
	maxInstrs := flag.Int64("max-instrs", 8_000_000, "-submit gas budget: retired instructions per SM (0 = unlimited)")
	memFootprint := flag.Int64("mem-footprint", 8<<20,
		"-submit declared memory footprint in bytes: static bound on memory-operand immediates and the memory gas budget")
	policyFlag := flag.String("policy", "", "warp scheduler policy: lrr (default), gto, wasp")
	si := flag.Bool("si", false, "enable Subwarp Interleaving")
	dws := flag.Bool("dws", false, "model Dynamic Warp Subdivision instead of SI")
	yield := flag.Bool("yield", false, "enable subwarp-yield (the paper's 'Both' mode)")
	trigger := flag.String("trigger", "half", "select trigger: any (N>0), half (N>=0.5), all (N=1)")
	latency := flag.Int("latency", 600, "L1 miss latency in cycles")
	warpSlots := flag.Int("warpslots", 8, "warp slots per processing block (2, 4, 8)")
	maxSubwarps := flag.Int("maxsubwarps", 0, "TST entries / subwarps per warp (0 = unlimited)")
	order := flag.String("order", "taken", "divergent path order: taken, fallthrough, largest, random")
	compile := flag.String("compile", "on", "execution engine: on (pre-decoded stream + fast-forward) or off (per-cycle interpreter); results are bit-identical")
	jobs := flag.Int("j", 0, "concurrent SM simulation goroutines (0 = GOMAXPROCS, 1 = sequential)")
	listApps := flag.Bool("listapps", false, "list application traces and exit")
	verbose := flag.Bool("v", false, "print the full counter set")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace_event JSON timeline to this file")
	traceWarps := flag.String("trace-warps", "", "restrict the trace to these global warp IDs, e.g. 0-7 or 0,4,12")
	timeline := flag.String("timeline", "", "write per-window occupancy/IPC/TST time series CSV to this file")
	timelineWindow := flag.Int("timeline-window", 1000, "time-series window length in cycles")
	stalls := flag.Bool("stalls", false, "print the idle-cycle stall-attribution table")
	hist := flag.Bool("hist", false, "print latency histograms (load-to-use, stall duration, residency)")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this long (0 = no limit)")
	cacheDir := flag.String("cache-dir", "", "reuse results from this content-addressed cache directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the simulation to this file")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("sisim %s\n", obs.Build())
		return
	}
	if flag.NArg() > 0 {
		fail("unexpected argument %q", flag.Arg(0))
	}

	if *listApps {
		for _, a := range subwarpsim.Applications() {
			fmt.Printf("%-6s %-24s %-5s regs=%d warps=%d shaders=%d\n",
				a.Name, a.App, a.Effect, a.RegsPerThread, a.NumWarps, a.Shaders)
		}
		for _, g := range subwarpsim.WorkloadGenerators() {
			fmt.Printf("%-8s %s (use -workload)\n", g.Name, g.Title)
		}
		return
	}

	cfg := subwarpsim.DefaultConfig()
	cfg.L1MissLatency = *latency
	cfg.WarpSlotsPerBlock = *warpSlots
	sched, err := subwarpsim.ParseSchedPolicy(*policyFlag)
	if err != nil {
		fail("%v", err)
	}
	cfg.SchedPolicy = sched
	switch strings.ToLower(*compile) {
	case "on":
		cfg.Compiled = true
	case "off":
		cfg.Compiled = false
	default:
		fail("unknown -compile %q (want on or off)", *compile)
	}
	switch strings.ToLower(*order) {
	case "taken":
		cfg.Order = subwarpsim.OrderTakenFirst
	case "fallthrough":
		cfg.Order = subwarpsim.OrderFallthroughFirst
	case "largest":
		cfg.Order = subwarpsim.OrderLargestFirst
	case "random":
		cfg.Order = subwarpsim.OrderRandom
	default:
		fail("unknown -order %q", *order)
	}
	if *dws {
		cfg = cfg.WithDWS()
	} else if *si {
		var trig subwarpsim.SelectTrigger
		switch strings.ToLower(*trigger) {
		case "any":
			trig = subwarpsim.TriggerAnyStalled
		case "half":
			trig = subwarpsim.TriggerHalfStalled
		case "all":
			trig = subwarpsim.TriggerAllStalled
		default:
			fail("unknown -trigger %q", *trigger)
		}
		cfg = cfg.WithSI(*yield, trig)
		cfg.SI.MaxSubwarps = *maxSubwarps
	}

	var kernel *subwarpsim.Kernel
	var workloadID string
	selected := 0
	for _, set := range []bool{*micro != 0, *app != "", *workloadFlag != "", *submitPath != ""} {
		if set {
			selected++
		}
	}
	switch {
	case selected > 1:
		fail("choose one workload: -app, -microbench, -workload, or -submit, not several")
	case *submitPath != "":
		workloadID = "submit/" + filepath.Base(*submitPath)
		kernel, err = buildSubmission(*submitPath, *submitWarps, subwarpsim.Budget{
			MaxCycles:   *maxCycles,
			MaxInstrs:   *maxInstrs,
			MaxMemBytes: *memFootprint,
		})
	case *micro != 0:
		// Negative and non-power-of-two sizes reach the builder so the
		// user sees its precise validation error, not the generic usage.
		workloadID = fmt.Sprintf("micro/%d", *micro)
		kernel, err = subwarpsim.BuildMicrobenchmark(subwarpsim.DefaultMicrobenchmark(*micro))
	case *app != "":
		workloadID = "app/" + *app
		var profile subwarpsim.AppProfile
		profile, err = subwarpsim.Application(*app)
		if err == nil {
			kernel, err = subwarpsim.BuildMegakernel(profile)
		}
	case *workloadFlag != "":
		// Unknown names reach the registry so the error enumerates the
		// registered families.
		workloadID = "gen/" + *workloadFlag
		kernel, err = subwarpsim.BuildWorkload(*workloadFlag)
	default:
		fail("choose a workload: -app <name>, -microbench <subwarp size>, or -workload <family>")
	}
	if err != nil {
		fail("%v", err)
	}

	// Attach the observability layer only when a trace product was
	// requested: a nil Config.Trace keeps the hot path untouched.
	var rec *subwarpsim.TraceRecorder
	if *tracePath != "" || *timeline != "" || *hist {
		rec = subwarpsim.NewTraceRecorder()
		if *traceWarps != "" {
			ids, perr := parseWarpList(*traceWarps)
			if perr != nil {
				fail("bad -trace-warps %q: %v", *traceWarps, perr)
			}
			rec.FilterWarps(ids)
		}
		if *timeline != "" {
			rec.Series = subwarpsim.NewTimeSeries(int64(*timelineWindow))
		}
		cfg.Trace = rec
	}

	// Deterministic fault injection from SISIM_FAULTS — the same spec
	// grammar the daemon honors, for local drills and chaos replay.
	injector, err := faults.FromEnv()
	if err != nil {
		fail("%v", err)
	}
	cfg.Faults = injector

	// Content-addressed result reuse. Tracing bypasses the cache: a
	// replayed Entry has counters but no event stream.
	var cache simcache.Cache
	var key simcache.Key
	cached := false
	if *cacheDir != "" && rec == nil {
		d := simcache.NewDisk(*cacheDir)
		d.Faults = injector
		cache = d
		key = simcache.KeyOf(cfg, kernel, workloadID)
	}

	var res subwarpsim.Result
	if cache != nil {
		if e, ok := cache.Get(key); ok {
			res = subwarpsim.Result{Config: cfg, Counters: e.Counters, Blocks: e.Blocks}
			cached = true
		}
	}
	var wall time.Duration
	if !cached {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		stopProfile := func() {}
		if *cpuProfile != "" {
			f, perr := os.Create(*cpuProfile)
			if perr != nil {
				fail("%v", perr)
			}
			if perr := pprof.StartCPUProfile(f); perr != nil {
				f.Close()
				fail("starting CPU profile: %v", perr)
			}
			// Idempotent: called on the normal path right after the run, and
			// by fail() if the run errors, so the profile is always flushed
			// and the file closed — an aborted run still yields a usable
			// profile of the cycles it simulated.
			stopped := false
			stopProfile = func() {
				if stopped {
					return
				}
				stopped = true
				pprof.StopCPUProfile()
				if cerr := f.Close(); cerr != nil {
					fmt.Fprintf(os.Stderr, "closing %s: %v\n", *cpuProfile, cerr)
				}
			}
			cleanups = append(cleanups, stopProfile)
		}
		start := time.Now()
		res, err = subwarpsim.RunContext(ctx, cfg, kernel, *jobs)
		wall = time.Since(start)
		stopProfile()
		if *memProfile != "" {
			if perr := writeFileWith(*memProfile, func(w io.Writer) error {
				runtime.GC() // settle the heap so the profile shows retained state
				return pprof.WriteHeapProfile(w)
			}); perr != nil {
				fail("writing %s: %v", *memProfile, perr)
			}
		}
		if err != nil {
			// Budget kills and deadlocks are the submission's fault, not the
			// simulator's; report them in the same structured terms the
			// daemon's 422 responses use.
			var be *subwarpsim.BudgetError
			var de *subwarpsim.DeadlockError
			switch {
			case errors.As(err, &be):
				fail("budget exhausted: %s used %d exceeds limit %d at cycle %d (sm %d)",
					be.Resource, be.Used, be.Limit, be.Cycle, be.SM)
			case errors.As(err, &de):
				fail("deadlock at cycle %d (sm %d)\n%s", de.Cycle, de.SM, de.State)
			}
			fail("%v", err)
		}
		if cache != nil {
			cache.Put(key, simcache.Entry{
				Policy:   cfg.PolicyName(),
				Blocks:   res.Blocks,
				Counters: res.Counters,
			})
		}
	}

	c := res.Counters
	d := res.Derived()
	fmt.Printf("kernel    %s\n", kernel.Program.Name)
	if kernel.Budget.Enabled() {
		fmt.Printf("budget    %d cycles, %d instrs, %d mem bytes (per SM) — run stayed within it\n",
			kernel.Budget.MaxCycles, kernel.Budget.MaxInstrs, kernel.Budget.MaxMemBytes)
	}
	if cached {
		fmt.Printf("cache     hit %s\n", key)
	}
	fmt.Printf("config    %s, %s sched, L1 miss %d cy, %d warp slots/block\n",
		cfg.PolicyName(), cfg.SchedPolicy, cfg.L1MissLatency, cfg.WarpSlotsPerBlock)
	fmt.Printf("cycles    %d\n", c.Cycles)
	if !cached && wall > 0 {
		fmt.Printf("wall      %v (%.0f sim-cycles/sec)\n",
			wall.Round(time.Millisecond), float64(c.Cycles)/wall.Seconds())
	}
	fmt.Printf("instrs    %d (IPC/block %.3f, SIMT efficiency %.1f%%)\n",
		c.IssuedInstrs, d.IPC, d.SIMTEfficiency*100)
	fmt.Printf("stalls    %.1f%% of time exposed on loads (%.1f%% in divergent code)\n",
		d.ExposedStallFrac*100, d.DivergentStallFrac*100)
	fmt.Printf("fetch     %.1f%% of time exposed on instruction fetch\n", d.FetchStallFrac*100)
	fmt.Printf("L1D       %.1f%% miss (%d/%d lines)\n", d.L1DMissRate*100, c.L1DMisses, c.L1DAccesses)
	if c.RTTraces > 0 {
		fmt.Printf("RT core   %d traces, %.1f BVH steps/ray\n", c.RTTraces, d.AvgTraversalSteps)
	}
	if cfg.SI.Enabled {
		fmt.Printf("SI        %d stalls, %d wakeups, %d selects, %d yields, %d TST overflows\n",
			c.SubwarpStalls, c.SubwarpWakeups, c.SubwarpSelects, c.SubwarpYields, c.TSTOverflow)
	}
	if *verbose {
		fmt.Printf("\ncounters  %+v\n", c)
	}
	if *stalls {
		fmt.Printf("\n%s", subwarpsim.StallAttribution(c))
	}
	if rec != nil {
		if *hist {
			for _, h := range rec.Histograms() {
				fmt.Printf("\n%s", h)
			}
		}
		if *tracePath != "" {
			if err := writeFileWith(*tracePath, rec.WriteChromeTrace); err != nil {
				fail("writing %s: %v", *tracePath, err)
			}
			fmt.Printf("trace     %d events -> %s (open in ui.perfetto.dev)\n",
				rec.Len(), *tracePath)
			if n := rec.Dropped(); n > 0 {
				fmt.Printf("trace     %d events dropped at the cap; filter with -trace-warps\n", n)
			}
		}
		if *timeline != "" {
			if err := writeFileWith(*timeline, rec.Series.WriteCSV); err != nil {
				fail("writing %s: %v", *timeline, err)
			}
			fmt.Printf("timeline  %d windows of %d cycles -> %s\n",
				rec.Series.Len(), rec.Series.Window, *timeline)
		}
	}
}

// buildSubmission reads, admission-checks, and packages an untrusted
// assembly file exactly as the daemon's /v1/submit does: the same
// validator, the same budget semantics (the declared footprint bounds
// memory-operand immediates statically and the stored words
// dynamically), so a kernel accepted here is accepted by the service.
func buildSubmission(path string, warps int, budget subwarpsim.Budget) (*subwarpsim.Kernel, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if warps < 1 {
		return nil, fmt.Errorf("-warps must be at least 1")
	}
	lim := admission.DefaultLimits()
	lim.MemFootprintBytes = budget.MaxMemBytes
	prog, err := admission.ValidateSource(filepath.Base(path), string(src), lim)
	if err != nil {
		var ae *admission.Error
		if errors.As(err, &ae) {
			return nil, fmt.Errorf("admission reject (reason %s, pc %d): %s", ae.Reason, ae.PC, ae.Detail)
		}
		return nil, err
	}
	perCTA := 2
	if warps < perCTA {
		perCTA = warps
	}
	return &subwarpsim.Kernel{
		Program:     prog,
		NumWarps:    warps,
		WarpsPerCTA: perCTA,
		Memory:      subwarpsim.NewMemory(),
		Budget:      &budget,
	}, nil
}

// writeFileWith streams fn's output into a freshly created file.
func writeFileWith(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseWarpList parses "0-7", "0,4,12" or mixes like "0-3,16,24-25"
// into a sorted list of global warp IDs.
func parseWarpList(s string) ([]int, error) {
	var ids []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi, found := strings.Cut(part, "-")
		from, err := strconv.Atoi(lo)
		if err != nil || from < 0 {
			return nil, fmt.Errorf("bad warp ID %q", lo)
		}
		to := from
		if found {
			if to, err = strconv.Atoi(hi); err != nil || to < from {
				return nil, fmt.Errorf("bad range %q", part)
			}
		}
		for id := from; id <= to; id++ {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("empty warp list")
	}
	return ids, nil
}

// cleanups are finalizers fail() must run before exiting — resources
// like an open CPU-profile file that defers would leak across os.Exit.
// Registered closures must be idempotent; they run last-first.
var cleanups []func()

func fail(format string, args ...any) {
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
