package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the sisim binary once per test into a temp dir.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sisim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (stdout string, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var outB, errB strings.Builder
	cmd.Stdout, cmd.Stderr = &outB, &errB
	err := cmd.Run()
	if err != nil {
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("run %v: %v", args, err)
		}
		return outB.String(), errB.String(), exitErr.ExitCode()
	}
	return outB.String(), errB.String(), 0
}

// TestCLIErrorPaths: every invalid invocation must exit 1 with a
// single-line error on stderr and no partial result table on stdout.
func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)

	for name, tc := range map[string]struct {
		args    []string
		wantErr string
	}{
		"no workload":         {[]string{}, "choose a workload"},
		"unknown app":         {[]string{"-app", "NoSuchApp"}, "NoSuchApp"},
		"negative microbench": {[]string{"-microbench", "-3"}, "-3"},
		"odd microbench":      {[]string{"-microbench", "5"}, "5"},
		"both workloads":      {[]string{"-app", "BFV1", "-microbench", "4"}, "not several"},
		"app and workload":    {[]string{"-app", "BFV1", "-workload", "gemm"}, "not several"},
		"unknown workload":    {[]string{"-workload", "nosuch"}, "nosuch"},
		"bad policy":          {[]string{"-microbench", "4", "-policy", "fifo"}, "fifo"},
		"bad order":           {[]string{"-microbench", "4", "-order", "sideways"}, "sideways"},
		"bad trigger":         {[]string{"-microbench", "4", "-si", "-trigger", "most"}, "most"},
		"bad trace warps":     {[]string{"-microbench", "4", "-trace", "/dev/null", "-trace-warps", "x"}, "trace-warps"},
		"stray argument":      {[]string{"-microbench", "4", "stray"}, "stray"},
		"tiny timeout":        {[]string{"-microbench", "4", "-timeout", "1ns"}, "cancelled"},
		"bad compile":         {[]string{"-microbench", "4", "-compile", "maybe"}, "maybe"},
	} {
		t.Run(name, func(t *testing.T) {
			stdout, stderr, code := runCLI(t, bin, tc.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q must mention %q", stderr, tc.wantErr)
			}
			if n := strings.Count(strings.TrimRight(stderr, "\n"), "\n"); n != 0 {
				t.Errorf("stderr must be one line, got %d:\n%s", n+1, stderr)
			}
			if strings.Contains(stdout, "cycles") {
				t.Errorf("failed run must not print a result table:\n%s", stdout)
			}
		})
	}
}

// TestCLIWorkloadMenu pins the dynamic -workload enumeration: the
// usage text, the -listapps catalog, and the unknown-name error must
// all list every registered generator family, so none of them can go
// stale as families are added (the old usage text only mentioned the
// raytracing traces).
func TestCLIWorkloadMenu(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	families := []string{"bfs", "gemm", "texture"}

	_, usage, code := runCLI(t, bin, "-h")
	if code != 0 {
		t.Fatalf("-h exit code = %d, want 0 (flag.ErrHelp)", code)
	}
	for _, f := range families {
		if !strings.Contains(usage, f) {
			t.Errorf("usage text must enumerate family %q:\n%s", f, usage)
		}
	}

	list, stderr, code := runCLI(t, bin, "-listapps")
	if code != 0 {
		t.Fatalf("-listapps failed: %s", stderr)
	}
	for _, f := range families {
		if !strings.Contains(list, f) {
			t.Errorf("-listapps must include family %q:\n%s", f, list)
		}
	}

	_, stderr, code = runCLI(t, bin, "-workload", "nosuch")
	if code != 1 {
		t.Fatalf("unknown workload exit code = %d, want 1", code)
	}
	for _, f := range families {
		if !strings.Contains(stderr, f) {
			t.Errorf("unknown-workload error must enumerate %q: %s", f, stderr)
		}
	}
}

// TestCLIWorkloadPolicyRun: a generator family runs end to end under a
// non-default scheduler policy, and the config line reports the policy.
func TestCLIWorkloadPolicyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	stdout, stderr, code := runCLI(t, bin,
		"-workload", "gemm", "-policy", "gto", "-si", "-timeout", "2m")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{"kernel", "cycles", "gto sched"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

// TestCLICacheRoundTrip: two runs against the same -cache-dir simulate
// once and report identical cycle counts.
func TestCLICacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	args := []string{"-microbench", "4", "-si", "-cache-dir", dir}

	first, stderr, code := runCLI(t, bin, args...)
	if code != 0 {
		t.Fatalf("first run failed: %s", stderr)
	}
	if strings.Contains(first, "cache     hit") {
		t.Fatal("first run cannot hit an empty cache")
	}
	second, stderr, code := runCLI(t, bin, args...)
	if code != 0 {
		t.Fatalf("second run failed: %s", stderr)
	}
	if !strings.Contains(second, "cache     hit") {
		t.Fatalf("second run must hit the cache:\n%s", second)
	}
	cycles := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "cycles") {
				return line
			}
		}
		return ""
	}
	if c1, c2 := cycles(first), cycles(second); c1 == "" || c1 != c2 {
		t.Errorf("cached cycles differ: %q vs %q", c1, c2)
	}
}

// TestCLIBaselineStillRuns guards the ordinary no-flag success path,
// including the throughput summary an uncached run must report.
func TestCLIBaselineStillRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	stdout, stderr, code := runCLI(t, bin, "-microbench", "4", "-timeout", "2m")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{"kernel", "cycles", "instrs", "wall", "sim-cycles/sec"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

// TestCLICompileModesAgree: -compile=off must run the interpreter and
// report exactly the cycle count of the default compiled engine.
func TestCLICompileModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	cycles := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "cycles") {
				return line
			}
		}
		return ""
	}
	comp, stderr, code := runCLI(t, bin, "-microbench", "4", "-si", "-compile", "on")
	if code != 0 {
		t.Fatalf("compiled run failed: %s", stderr)
	}
	interp, stderr, code := runCLI(t, bin, "-microbench", "4", "-si", "-compile", "off")
	if code != 0 {
		t.Fatalf("interpreted run failed: %s", stderr)
	}
	if c1, c2 := cycles(comp), cycles(interp); c1 == "" || c1 != c2 {
		t.Errorf("engines report different cycles: %q vs %q", c1, c2)
	}
}

// TestCLISubmitSamples: every kernel shipped in examples/submissions
// runs end to end under -submit — through the same admission checks
// and gas budgets the daemon applies — and reports its budget line.
func TestCLISubmitSamples(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	samples, err := filepath.Glob("../../examples/submissions/*.asm")
	if err != nil || len(samples) < 2 {
		t.Fatalf("want at least two sample submissions, got %v (%v)", samples, err)
	}
	for _, sample := range samples {
		t.Run(filepath.Base(sample), func(t *testing.T) {
			stdout, stderr, code := runCLI(t, bin, "-submit", sample, "-timeout", "2m")
			if code != 0 {
				t.Fatalf("exit %d: %s", code, stderr)
			}
			for _, want := range []string{"kernel", "budget", "cycles", "stayed within"} {
				if !strings.Contains(stdout, want) {
					t.Errorf("output missing %q:\n%s", want, stdout)
				}
			}
		})
	}
}

// TestCLISubmitSandbox: hostile inputs fail closed — a statically
// invalid kernel is rejected with a structured admission reason, a
// runaway kernel is killed by the gas meter, and both exit 1.
func TestCLISubmitSandbox(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	hostile := "../../internal/admission/testdata/hostile"

	stdout, stderr, code := runCLI(t, bin, "-submit", filepath.Join(hostile, "oob_load.asm"))
	if code != 1 || !strings.Contains(stderr, "admission reject") || !strings.Contains(stderr, "footprint") {
		t.Errorf("oob_load: exit %d, stderr %q; want exit 1 with a footprint admission reject", code, stderr)
	}
	if strings.Contains(stdout, "cycles") {
		t.Errorf("rejected run must not print a result table:\n%s", stdout)
	}

	_, stderr, code = runCLI(t, bin,
		"-submit", filepath.Join(hostile, "infinite_loop.asm"), "-max-cycles", "10000")
	if code != 1 || !strings.Contains(stderr, "budget exhausted") {
		t.Errorf("infinite_loop: exit %d, stderr %q; want exit 1 with a budget kill", code, stderr)
	}

	// The kill point is part of the deterministic contract: both
	// execution engines report the identical message.
	_, interp, code := runCLI(t, bin,
		"-submit", filepath.Join(hostile, "infinite_loop.asm"), "-max-cycles", "10000", "-compile", "off")
	if code != 1 {
		t.Fatalf("interpreted kill exit = %d, want 1", code)
	}
	if interp != stderr {
		t.Errorf("engines disagree on the kill:\ncompiled:    %q\ninterpreted: %q", stderr, interp)
	}
}

// TestCLIProfileFlags: -cpuprofile and -memprofile must produce
// non-empty pprof files alongside a normal run.
func TestCLIProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stdout, stderr, code := runCLI(t, bin,
		"-microbench", "4", "-timeout", "2m", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "cycles") {
		t.Fatalf("profiled run must still print results:\n%s", stdout)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s missing: %v", path, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestCLIProfileFlushedOnError: a run that fails after profiling has
// started (here: immediate context timeout) must still stop the CPU
// profile and close the file — fail() exits the process, so the stop
// runs through the cleanup registry, not a defer. Before that fix the
// file was left zero-length because profile data is only written at
// StopCPUProfile.
func TestCLIProfileFlushedOnError(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildCLI(t)
	cpu := filepath.Join(t.TempDir(), "cpu.prof")
	_, stderr, code := runCLI(t, bin,
		"-microbench", "4", "-timeout", "1ns", "-cpuprofile", cpu)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "cancelled") {
		t.Fatalf("expected a cancellation error, got: %s", stderr)
	}
	fi, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("profile missing after failed run: %v", err)
	}
	if fi.Size() == 0 {
		t.Errorf("profile is empty: the failed run did not flush it")
	}
}
