// Command traceview inspects a generated workload: disassembly, static
// footprint, scene statistics, and the per-warp divergence profile
// produced by actually tracing the first warps' rays through the BVH.
//
//	traceview -app BFV1
//	traceview -app Ctrl -disasm
//	traceview -microbench 2
package main

import (
	"flag"
	"fmt"
	"os"

	"subwarpsim"
)

func main() {
	app := flag.String("app", "", "application trace name (AV1..MW)")
	micro := flag.Int("microbench", 0, "microbenchmark subwarp size (1..32)")
	disasm := flag.Bool("disasm", false, "print the full program disassembly")
	warps := flag.Int("warps", 8, "warps to profile for divergence")
	flag.Parse()

	var kernel *subwarpsim.Kernel
	var err error
	switch {
	case *micro > 0:
		kernel, err = subwarpsim.BuildMicrobenchmark(subwarpsim.DefaultMicrobenchmark(*micro))
	case *app != "":
		var p subwarpsim.AppProfile
		if p, err = subwarpsim.Application(*app); err == nil {
			kernel, err = subwarpsim.BuildMegakernel(p)
		}
	default:
		fmt.Fprintln(os.Stderr, "choose -app <name> or -microbench <subwarp size>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prog := kernel.Program
	fmt.Printf("kernel      %s\n", prog.Name)
	fmt.Printf("instrs      %d (%.1f KB encoded, %d regs/thread)\n",
		prog.Len(), float64(prog.StaticFootprintBytes(8))/1024, prog.RegsPerThread)
	fmt.Printf("warps       %d (%d threads)\n", kernel.NumWarps, kernel.NumWarps*32)

	if kernel.BVH != nil {
		fmt.Printf("scene       %s\n", kernel.BVH.Stats())
		profileDivergence(kernel, *warps)
	}

	if *disasm {
		fmt.Println()
		fmt.Print(prog.Disassemble())
	}
}

// profileDivergence traces each warp's 32 primary rays and reports how
// many distinct shaders the warp dispatches — the subwarp count SI can
// exploit (Fig. 5's splintering).
func profileDivergence(kernel *subwarpsim.Kernel, warps int) {
	hist := make(map[int]int)
	for w := 0; w < warps && w < kernel.NumWarps; w++ {
		shaders := make(map[int]bool)
		for lane := 0; lane < 32; lane++ {
			ray := kernel.RayGen(uint32(w*32 + lane))
			hit := kernel.BVH.Traverse(ray, 1e-4, subwarpsim.InfinityT)
			mat := subwarpsim.MissMaterial
			if hit.Ok {
				mat = hit.Material
			}
			shaders[mat] = true
		}
		hist[len(shaders)]++
	}
	fmt.Printf("divergence  primary-ray shader counts per warp (first %d warps):\n", warps)
	for ways := 1; ways <= 32; ways++ {
		if n := hist[ways]; n > 0 {
			fmt.Printf("            %2d-way: %d warps\n", ways, n)
		}
	}
}
