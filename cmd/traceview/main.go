// Command traceview inspects a generated workload: disassembly, static
// footprint, scene statistics, and the per-warp divergence profile
// produced by actually tracing the first warps' rays through the BVH.
// With -replay it additionally simulates the kernel with the event
// recorder attached and renders an ASCII subwarp-state timeline (a
// generalization of the paper's Fig. 10) plus the idle-cycle
// stall-attribution table.
//
//	traceview -app BFV1
//	traceview -app Ctrl -disasm
//	traceview -microbench 2
//	traceview -microbench 4 -replay -si -width 120
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subwarpsim"
	"subwarpsim/internal/obs"
)

func main() {
	appHelp := "application trace name, one of: " + strings.Join(subwarpsim.ApplicationNames(), ", ")
	app := flag.String("app", "", appHelp)
	micro := flag.Int("microbench", 0, "microbenchmark subwarp size (1..32)")
	disasm := flag.Bool("disasm", false, "print the full program disassembly")
	warps := flag.Int("warps", 8, "warps to profile for divergence (and rows in -replay)")
	replay := flag.Bool("replay", false, "simulate with tracing and render the subwarp-state timeline")
	si := flag.Bool("si", false, "enable Subwarp Interleaving for -replay")
	yield := flag.Bool("yield", false, "enable subwarp-yield for -replay")
	width := flag.Int("width", 100, "timeline columns for -replay")
	compile := flag.String("compile", "on", "execution engine for -replay: on (compiled) or off (interpreter)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Printf("traceview %s\n", obs.Build())
		return
	}

	var kernel *subwarpsim.Kernel
	var err error
	switch {
	case *micro > 0:
		kernel, err = subwarpsim.BuildMicrobenchmark(subwarpsim.DefaultMicrobenchmark(*micro))
	case *app != "":
		var p subwarpsim.AppProfile
		if p, err = subwarpsim.Application(*app); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %v\nvalid -app names: %s\n",
				err, strings.Join(subwarpsim.ApplicationNames(), ", "))
			os.Exit(1)
		}
		kernel, err = subwarpsim.BuildMegakernel(p)
	default:
		fmt.Fprintln(os.Stderr, "choose -app <name> or -microbench <subwarp size>")
		fmt.Fprintf(os.Stderr, "valid -app names: %s\n", strings.Join(subwarpsim.ApplicationNames(), ", "))
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prog := kernel.Program
	fmt.Printf("kernel      %s\n", prog.Name)
	fmt.Printf("instrs      %d (%.1f KB encoded, %d regs/thread)\n",
		prog.Len(), float64(prog.StaticFootprintBytes(8))/1024, prog.RegsPerThread)
	fmt.Printf("warps       %d (%d threads)\n", kernel.NumWarps, kernel.NumWarps*32)

	if kernel.BVH != nil {
		fmt.Printf("scene       %s\n", kernel.BVH.Stats())
		profileDivergence(kernel, *warps)
	}

	if *disasm {
		fmt.Println()
		fmt.Print(prog.Disassemble())
	}

	var compiled bool
	switch strings.ToLower(*compile) {
	case "on":
		compiled = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "bad -compile %q (on, off)\n", *compile)
		os.Exit(2)
	}

	if *replay {
		replayTimeline(kernel, *si, *yield, compiled, *warps, *width)
	}
}

// replayTimeline runs the kernel with the event recorder attached and
// prints the reconstructed subwarp-state chart and stall attribution.
// Tracing already disables fast-forward; compiled=false additionally
// drops the pre-decoded stream and replays on the raw interpreter —
// the rendered timeline is identical either way.
func replayTimeline(kernel *subwarpsim.Kernel, si, yield, compiled bool, warps, width int) {
	cfg := subwarpsim.DefaultConfig()
	cfg.Compiled = compiled
	if si {
		cfg = cfg.WithSI(yield, subwarpsim.TriggerHalfStalled)
	}
	rec := subwarpsim.NewTraceRecorder()
	cfg.Trace = rec
	res, err := subwarpsim.Run(cfg, kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nreplay      %s, %d cycles, %d events recorded\n",
		cfg.PolicyName(), res.Counters.Cycles, rec.Len())
	fmt.Print(rec.ASCIITimeline(subwarpsim.TimelineOptions{Width: width, MaxWarps: warps}))
	fmt.Printf("\n%s", subwarpsim.StallAttribution(res.Counters))
}

// profileDivergence traces each warp's 32 primary rays and reports how
// many distinct shaders the warp dispatches — the subwarp count SI can
// exploit (Fig. 5's splintering).
func profileDivergence(kernel *subwarpsim.Kernel, warps int) {
	hist := make(map[int]int)
	for w := 0; w < warps && w < kernel.NumWarps; w++ {
		shaders := make(map[int]bool)
		for lane := 0; lane < 32; lane++ {
			ray := kernel.RayGen(uint32(w*32 + lane))
			hit := kernel.BVH.Traverse(ray, 1e-4, subwarpsim.InfinityT)
			mat := subwarpsim.MissMaterial
			if hit.Ok {
				mat = hit.Material
			}
			shaders[mat] = true
		}
		hist[len(shaders)]++
	}
	fmt.Printf("divergence  primary-ray shader counts per warp (first %d warps):\n", warps)
	for ways := 1; ways <= 32; ways++ {
		if n := hist[ways]; n > 0 {
			fmt.Printf("            %2d-way: %d warps\n", ways, n)
		}
	}
}
