package subwarpsim

import (
	"subwarpsim/internal/rtcore"
	"subwarpsim/internal/scene"
)

// The raytracing substrate is exported so applications can generate
// scenes, build acceleration structures and trace rays directly — the
// same BVH traversal that the simulated RT core executes on behalf of
// the TRACE instruction.

// Vec3 is a 3-component single-precision vector.
type Vec3 = rtcore.Vec3

// V constructs a Vec3.
func V(x, y, z float32) Vec3 { return rtcore.V(x, y, z) }

// Ray is a half-line through the scene.
type Ray = rtcore.Ray

// NewRay builds a ray with a normalized direction.
func NewRay(origin, dir Vec3) Ray { return rtcore.NewRay(origin, dir) }

// Triangle is a scene primitive carrying a material (shader selector).
type Triangle = rtcore.Triangle

// Hit is a traversal result: hit distance, primitive, material, and the
// node-visit count that drives the RT core's latency model.
type Hit = rtcore.Hit

// BVH is a bounding volume hierarchy over triangles.
type BVH = rtcore.BVH

// BuildBVH constructs a hierarchy by median split.
func BuildBVH(tris []Triangle) *BVH { return rtcore.BuildBVH(tris) }

// MissMaterial is the material reported for rays that hit nothing.
const MissMaterial = rtcore.MissMaterial

// InfinityT is a convenient tmax for camera rays.
const InfinityT = rtcore.InfinityT

// SceneParams configures procedural scene generation.
type SceneParams = scene.Params

// Scene is generated geometry with its acceleration structure.
type Scene = scene.Scene

// GenerateScene builds a deterministic procedural scene.
func GenerateScene(p SceneParams) (*Scene, error) { return scene.Generate(p) }

// Camera shoots primary rays through a pixel grid.
type Camera = scene.Camera

// NewCamera frames the given bounds with a w x h pixel grid.
func NewCamera(bvh *BVH, w, h int) Camera { return scene.NewCamera(bvh.Bounds(), w, h) }
