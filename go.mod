module subwarpsim

go 1.22
